// Command experiments regenerates the tables and figures of the CPSJoin
// paper's evaluation (Section VI). Each subcommand prints the rows/series
// of one paper artifact; `all` runs everything.
//
// Usage:
//
//	experiments [-scale smoke|small|paper] [-runs 1] [-seed 42] <subcommand>
//
// Subcommands:
//
//	table1    dataset statistics                    (Table I)
//	table2    join times CP/MH/ALL at >=90% recall  (Table II)
//	fig2      CPSJoin speedup over AllPairs         (Figure 2)
//	fig3a     join time vs brute-force limit        (Figure 3a)
//	fig3b     join time vs epsilon                  (Figure 3b)
//	fig3c     join time vs sketch words             (Figure 3c)
//	table4    candidate statistics ALL vs CP        (Table IV)
//	tokens    TOKENS robustness progression         (Section VI-A.3)
//	ablation  stopping strategies                   (Section IV-C.5)
//	bayes     BayesLSH comparison                   (Section VI-A.2)
//	theory    depth/space bounds                    (Lemma 4, Remark 9)
//	parallel  join time vs -workers scaling         (Section VII; -format
//	          json emits the BENCH_parallel.json schema used by `make bench`)
//	serving   sharded-index batch-query throughput vs shards and workers,
//	          in both topologies — all-local and distributed over two
//	          in-process HTTP peers with every shard moved (the
//	          local/remote equivalence flag checked per cell) — plus the
//	          compaction churn workload (-format json emits the
//	          BENCH_serving.json schema with both row arrays)
//	compaction  add/delete churn, one Compact pass, post-compaction
//	          queries: ring shrinkage, reclaimed tombstones, and the
//	          equivalence/determinism flags (table view of the compaction
//	          rows inside BENCH_serving.json)
//	query     point-query microbenchmarks (Query / QueryAll / QueryBatch
//	          ns/op, allocs/op and qps) across the flat vs pointer layout
//	          and result-cache on/off dimensions, every cell's answers
//	          checked identical to the flat uncached reference (-format
//	          json emits the BENCH_query.json schema used by
//	          `make bench-micro`)
//	accuracy  containment-search accuracy: precision/recall/F1 of the
//	          sharded index's containment answers against brute-force
//	          ground truth, across thresholds and a shards × partition
//	          topology grid with the byte-identical determinism check
//	          (-format json emits the BENCH_accuracy.json schema used by
//	          `make bench`)
//	all       everything above except parallel, serving, compaction,
//	          query and accuracy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/bench"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "workload scale: smoke, small or paper")
		runs      = flag.Int("runs", 1, "timed runs per measurement (minimum reported)")
		seed      = flag.Uint64("seed", 42, "random seed")
		recall    = flag.Float64("recall", 0.9, "target recall for approximate methods")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines per measured algorithm (1 = sequential; join result sets are identical across values, but timings, candidate counters and recall-stop points vary with scheduling — use 1 for bit-reproducible experiment tables)")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		format    = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var scale bench.Scale
	switch *scaleName {
	case "smoke":
		scale = bench.SmokeScale()
	case "small":
		scale = bench.DefaultScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		fatalf("unknown scale %q", *scaleName)
	}
	cfg := bench.Config{Runs: *runs, TargetRecall: *recall, Seed: *seed, Workers: *workers}
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = io.Discard
	}
	out := os.Stdout

	csvOut := *format == "csv"
	jsonOut := *format == "json"
	if *format != "table" && *format != "csv" && *format != "json" {
		fatalf("unknown format %q (want table, csv or json)", *format)
	}
	switch flag.Arg(0) {
	case "parallel", "serving", "compaction", "query", "accuracy":
	default:
		if jsonOut {
			fatalf("-format json is only supported by the parallel, serving, compaction, query and accuracy subcommands")
		}
	}
	banner := func(s string) {
		if !csvOut && !jsonOut {
			fmt.Fprintln(out, s)
		}
	}
	check := func(err error) {
		if err != nil {
			fatalf("%v", err)
		}
	}

	cmd := flag.Arg(0)
	run := func(name string) {
		switch name {
		case "table1":
			banner("== Table I: dataset statistics ==")
			rows := bench.RunTable1(bench.AllWorkloads(scale))
			if csvOut {
				check(bench.CSVTable1(out, rows))
			} else {
				bench.PrintTable1(out, rows)
			}
		case "table2":
			banner("== Table II: join time in seconds (CP | MH | ALL), recall >= target ==")
			cells := bench.RunTable2(bench.AllWorkloads(scale), bench.Thresholds, cfg, progress)
			if csvOut {
				check(bench.CSVTable2(out, cells))
			} else {
				bench.PrintTable2(out, cells, bench.Thresholds)
			}
		case "fig2":
			banner("== Figure 2: CPSJoin speedup over AllPairs ==")
			cells := bench.RunTable2(bench.AllWorkloads(scale), bench.Thresholds, cfg, progress)
			points := bench.Fig2FromTable2(cells)
			if csvOut {
				check(bench.CSVFig2(out, points))
			} else {
				bench.PrintFig2(out, points)
			}
		case "fig3a", "fig3b", "fig3c":
			param := map[string]string{"fig3a": "limit", "fig3b": "epsilon", "fig3c": "words"}[name]
			if !csvOut {
				fmt.Fprintf(out, "== Figure 3: join time vs %s (λ=0.5, recall >= 0.8) ==\n", param)
			}
			cfg3 := cfg
			cfg3.TargetRecall = 0.8
			points, err := bench.RunFig3(bench.AllWorkloads(scale), param, cfg3, progress)
			check(err)
			if csvOut {
				check(bench.CSVFig3(out, points))
			} else {
				bench.PrintFig3(out, points)
			}
		case "table4":
			banner("== Table IV: pre-candidates / candidates / results ==")
			rows := bench.RunTable4(bench.AllWorkloads(scale), cfg, progress)
			if csvOut {
				check(bench.CSVTable4(out, rows))
			} else {
				bench.PrintTable4(out, rows)
			}
		case "tokens":
			banner("== TOKENS robustness progression (Section VI-A.3) ==")
			cells := bench.RunTable2(bench.SyntheticWorkloads(scale), bench.Thresholds, cfg, progress)
			if csvOut {
				check(bench.CSVTable2(out, cells))
			} else {
				bench.PrintTable2(out, cells, bench.Thresholds)
				bench.PrintFig2(out, bench.Fig2FromTable2(cells))
			}
		case "theory":
			banner("== Recursion bounds: Lemma 4 depth, Remark 9 working space ==")
			rows := bench.RunTheory(bench.AllWorkloads(scale), cfg, progress)
			if csvOut {
				check(bench.CSVTheory(out, rows))
			} else {
				bench.PrintTheory(out, rows)
			}
		case "ablation":
			banner("== Stopping-strategy ablation (Section IV-C.5) ==")
			rows := bench.RunAblation(bench.SyntheticWorkloads(scale), cfg, progress)
			if csvOut {
				check(bench.CSVAblation(out, rows))
			} else {
				bench.PrintAblation(out, rows)
			}
		case "bayes":
			banner("== BayesLSH-lite comparison (Section VI-A.2) ==")
			rows := bench.RunBayes(bench.SyntheticWorkloads(scale), cfg, progress)
			if csvOut {
				check(bench.CSVBayes(out, rows))
			} else {
				bench.PrintBayes(out, rows)
			}
		case "parallel":
			banner("== Parallel scaling: join time vs workers (λ=0.5) ==")
			rows := bench.RunParallelScaling(bench.SyntheticWorkloads(scale), bench.DefaultWorkerCounts(), cfg, progress)
			if jsonOut {
				check(bench.WriteParallelJSON(out, rows))
			} else {
				bench.PrintParallel(out, rows)
			}
		case "serving":
			banner("== Serving: sharded batch-query throughput vs shards and workers (λ=0.5) ==")
			// UNIFORM005 only: one workload keeps the cell grid (shards ×
			// workers) affordable on every `make bench`.
			ws := bench.SyntheticWorkloads(scale)[:1]
			rows := bench.RunServingBench(ws, bench.DefaultShardCounts(), bench.DefaultWorkerCounts(), cfg, progress)
			comp := bench.RunCompactionBench(ws, []int{2, 4}, bench.DefaultWorkerCounts(), cfg, progress)
			// The observability check rides along: scrape /metrics off an
			// instrumented distributed index and record the verdict with
			// the rows, so CI gates on the exposition staying valid.
			scrape := bench.CheckMetricsExposition(ws[0], cfg)
			// So does the placement-GC soak: seal + compact + re-distribute
			// churn against live peers, gated on peers hosting exactly the
			// final ring.
			churn := bench.RunPlacementChurn(ws[0], cfg, progress)
			// And the storage-tier comparison: the same saved index
			// restored hot and cold, gated on cold answers staying
			// byte-identical and the lazy open being ≥5× faster.
			tiering := bench.RunTieringBench(ws[0], cfg, progress)
			if jsonOut {
				check(bench.WriteServingJSON(out, rows, comp, &scrape, &churn, &tiering))
			} else {
				bench.PrintServing(out, rows)
				banner("== Compaction: churn, one pass, post-compaction queries (λ=0.5) ==")
				bench.PrintCompaction(out, comp)
				banner("== Tiering: hot vs cold restore of the same saved index ==")
				bench.PrintTiering(out, tiering)
				fmt.Fprintf(out, "\nmetrics scrape: ok=%v series=%d %s\n", scrape.OK, scrape.Series, scrape.Error)
				fmt.Fprintf(out, "placement churn: gc_clean=%v identical=%v ring=%d\n", churn.GCClean, churn.Identical, churn.RingKeys)
			}
		case "compaction":
			banner("== Compaction: churn, one pass, post-compaction queries (λ=0.5) ==")
			comp := bench.RunCompactionBench(bench.SyntheticWorkloads(scale)[:1], []int{2, 4}, bench.DefaultWorkerCounts(), cfg, progress)
			if jsonOut {
				check(bench.WriteServingJSON(out, nil, comp, nil, nil, nil))
			} else {
				bench.PrintCompaction(out, comp)
			}
		case "accuracy":
			banner("== Containment accuracy: index answers vs brute-force ground truth ==")
			// UNIFORM005 only, like serving and query: one workload keeps
			// the threshold × topology grid affordable on every run.
			arows := bench.RunAccuracyBench(bench.SyntheticWorkloads(scale)[:1], bench.AccuracyThresholds, cfg, progress)
			if jsonOut {
				check(bench.WriteAccuracyJSON(out, arows))
			} else {
				bench.PrintAccuracy(out, arows)
			}
		case "query":
			banner("== Query microbenchmarks: layout and cache dimensions (λ=0.5) ==")
			// UNIFORM005 only, like serving: one workload keeps the cell
			// grid affordable on every run.
			qrows := bench.RunQueryBench(bench.SyntheticWorkloads(scale)[:1], cfg, progress)
			if jsonOut {
				check(bench.WriteQueryJSON(out, qrows))
			} else {
				bench.PrintQuery(out, qrows)
			}
		default:
			fatalf("unknown subcommand %q", name)
		}
	}

	if cmd == "all" {
		for _, name := range []string{
			"table1", "table2", "fig2", "fig3a", "fig3b", "fig3c",
			"table4", "tokens", "ablation", "bayes", "theory",
		} {
			run(name)
			fmt.Fprintln(out)
		}
		return
	}
	run(cmd)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
