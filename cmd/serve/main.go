// Command serve runs the sharded similarity search service: it loads a
// dataset, partitions it into shards (each an independent Chosen Path
// index built in parallel on the execution layer), and serves queries,
// batch queries and incremental appends over HTTP/JSON.
//
// Usage:
//
//	serve -input catalogue.txt -threshold 0.6 [-addr :8321] [-shards 4]
//	      [-hash] [-merge 1024] [-trees 10] [-seed 42] [-workers N]
//
// Endpoints:
//
//	POST /query        {"set":[1,2,3], "all":true}   one query
//	POST /query_batch  {"sets":[[1,2,3],[4,5,6]]}    many queries, one round trip
//	POST /add          {"sets":[[7,8,9]]}            append sets (no rebuild)
//	GET  /stats                                      index shape snapshot
//	GET  /healthz                                    liveness
//
// Example:
//
//	serve -input catalogue.txt -threshold 0.5 &
//	curl -s localhost:8321/query -d '{"set":[1,2,3],"all":true}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	ssjoin "repro"
	"repro/internal/shard"
)

func main() {
	var (
		input     = flag.String("input", "", "catalogue dataset file (required)")
		addr      = flag.String("addr", ":8321", "listen address")
		threshold = flag.Float64("threshold", 0.5, "Jaccard similarity threshold in (0,1)")
		shards    = flag.Int("shards", 4, "number of primary shards")
		hashPart  = flag.Bool("hash", false, "partition by id hash instead of contiguous ranges")
		merge     = flag.Int("merge", 1024, "buffered appends before the side shard is sealed into the ring")
		trees     = flag.Int("trees", 0, "index trees per shard (0 = default 10)")
		seed      = flag.Uint64("seed", 42, "random seed")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for builds and batch queries")
	)
	flag.Parse()

	if *input == "" {
		fmt.Fprintln(os.Stderr, "serve: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold <= 0 || *threshold >= 1 {
		fatalf("threshold %v out of (0,1)", *threshold)
	}

	catalogue, err := ssjoin.LoadSets(*input)
	if err != nil {
		fatalf("loading %s: %v", *input, err)
	}
	opts := &shard.Options{
		Shards:         *shards,
		MergeThreshold: *merge,
		Trees:          *trees,
		Seed:           *seed,
		Workers:        *workers,
	}
	if *hashPart {
		opts.Partition = shard.PartitionHash
	}
	start := time.Now()
	ix := shard.Build(catalogue, *threshold, opts)
	st := ix.Stats()
	fmt.Fprintf(os.Stderr, "serve: indexed %d sets in %d %s shards (%.2fs, %d nodes) — listening on %s\n",
		st.Sets, st.Shards, st.Partition, time.Since(start).Seconds(), st.Nodes, *addr)

	srv := &http.Server{Addr: *addr, Handler: shard.NewServer(ix)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown so in-flight requests finish draining before exit.
	stop()
	<-drained
	fmt.Fprintln(os.Stderr, "serve: shut down")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
	os.Exit(1)
}
