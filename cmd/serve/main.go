// Command serve runs the sharded similarity search service: it loads a
// dataset, partitions it into shards (each an independent Chosen Path
// index built in parallel on the execution layer), and serves queries,
// batch queries, incremental appends and deletes over HTTP/JSON.
//
// Usage:
//
//	serve -input catalogue.txt -threshold 0.6 [-addr :8321] [-shards 4]
//	      [-hash] [-merge 1024] [-trees 10] [-seed 42] [-workers N]
//	      [-data DIR] [-save-on-shutdown] [-auto-compact] [-tier T]
//	      [-cache N] [-pprof] [-metrics] [-slow-query D] [-access-log]
//	      [-peers URL,URL,...] [-replicas N] [-keep-local] [-peer]
//	      [-placement-interval D] [-probe-interval D] [-rebalance]
//
// Persistence: with -data, the service restores the index from DIR's
// snapshot (manifest + per-shard files) when one exists — restart cost
// becomes I/O instead of a rebuild — and otherwise builds from -input.
// With -save-on-shutdown it snapshots the live index (including buffered
// appends and tombstones) into DIR on graceful shutdown.
//
// Storage tiers: -tier cold restores shards memory-mapped with lazy
// decode — restore time and resident memory drop to the container
// headers, while queries fault in only the pages they touch and answer
// byte-identically to the hot tier. -tier auto maps large shards, keeps
// small ones decoded, and retiers on query frequency via the placement
// controller's cadence. -tier hot forces full decode; empty keeps
// whatever tier the snapshot was saved under.
//
// Endpoints (each also reachable at its bare pre-/v1 path, kept as an
// alias; errors are structured JSON {"error":..., "code":...}):
//
//	POST /v1/query        {"set":[1,2,3], "all":true, "debug":true}  one query (debug adds the per-shard trace)
//	POST /v1/query        {"set":[1,2,3], "mode":"containment", "threshold":0.8, "limit":10}
//	                                                    containment search: indexed sets holding ≥ threshold of the query
//	POST /v1/query_batch  {"sets":[[1,2,3],[4,5,6]]}    many queries, one round trip
//	POST /v1/add          {"sets":[[7,8,9]]}            append sets (no rebuild)
//	POST /v1/delete       {"ids":[3,17]}                tombstone sets
//	POST /v1/compact      merge small shards, reclaim tombstones (non-blocking for queries)
//	GET  /v1/stats                                      index shape snapshot
//	GET  /v1/metrics                                    Prometheus text exposition (disable with -metrics=false)
//	GET  /v1/healthz                                    liveness (always 200, health JSON body)
//	GET  /v1/readyz                                     readiness (503 while a remote shard is unanswerable)
//
// Observability: /metrics exposes query/mutation latency histograms, the
// candidate pipeline counters, per-peer RPC and failover counters,
// compaction, cache and execution-layer metrics in the Prometheus text
// format. -slow-query 250ms logs one structured line (query size,
// per-shard timings, candidate counts, cache outcome) for every /query
// over the threshold; the same breakdown is available per request with
// "debug":true. -access-log logs one line per HTTP request. All logging
// is structured log/slog on stderr.
//
// Performance: -cache N caches up to N hot query results (invalidated
// automatically by appends, deletes, seals, compactions and shard
// placement; hit/miss counters appear in /stats and /metrics). -pprof
// mounts the net/http/pprof profiling endpoints under /debug/pprof/ on
// the serving listener — registered explicitly on the opt-in mux, so
// profiling endpoints exist only when asked for:
//
//	go tool pprof http://localhost:8321/debug/pprof/profile?seconds=10
//
// Compaction: every seal appends a small shard and every delete against a
// sealed shard leaves a tombstone, so a long-running service degrades
// without maintenance. With -auto-compact the index merges small shards
// and reclaims tombstones in the background after each seal; without it,
// POST /compact runs one pass on demand. Either way queries keep being
// served from the old ring until the rebuilt shard swaps in.
//
// Distributed serving: with -peers, the service becomes a coordinator —
// after building or restoring its index it ships every sealed shard's
// snapshot to -replicas peers (a static round-robin assignment over the
// peer list) and fans queries out to them, failing over down each
// shard's replica list and, with -keep-local (the default), to the
// retained in-process copy, so answers stay byte-identical to the
// all-local index even with peers down. With -keep-local=false shards
// are moved, not replicated: RAM for the bulk structures is freed, and a
// shard whose replicas are all dead makes queries fail with 502 rather
// than silently answering from partial topology — /readyz turns 503 in
// that state so load balancers drain the node. Peers are ordinary serve
// instances — any instance accepts shipped shards on /shard/snapshot and
// answers /shard/query — and -peer starts one with an empty index of its
// own, purely to host shards for coordinators.
//
// Placement control plane: -placement-interval D closes the loop that a
// one-shot -peers distribution leaves open. A background controller
// re-ships newly sealed (and compaction-merged) shards to the peers
// automatically, garbage-collects hosted shards the ring no longer
// references (re-shipped rings do not leak their predecessors' keys; the
// ownership record persists in the snapshot manifest, so even a restart
// cannot orphan keys), and probes every peer's /healthz each
// -probe-interval — flipping the same health bit /readyz reads — with
// capped exponential backoff on failing peers. -rebalance additionally
// re-ships replicas away from peers that stay unhealthy. All placement
// transitions preserve byte-identical query answers.
//
// Example:
//
//	serve -input catalogue.txt -threshold 0.5 -data /var/lib/cps -save-on-shutdown &
//	curl -s localhost:8321/query -d '{"set":[1,2,3],"all":true}'
//	curl -s localhost:8321/metrics | grep cps_query_seconds
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	ssjoin "repro"
	"repro/internal/shard"
	"repro/internal/snapshot"
)

// logger is the process-wide structured logger: text handler on stderr,
// shared with the shard server's slow-query log.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		input     = flag.String("input", "", "catalogue dataset file (required unless -data has a snapshot)")
		addr      = flag.String("addr", ":8321", "listen address")
		threshold = flag.Float64("threshold", 0.5, "Jaccard similarity threshold in (0,1); ignored when restoring from -data")
		shards    = flag.Int("shards", 4, "number of primary shards; ignored when restoring from -data")
		hashPart  = flag.Bool("hash", false, "partition by id hash instead of contiguous ranges; ignored when restoring from -data")
		merge     = flag.Int("merge", 1024, "buffered appends before the side shard is sealed into the ring; ignored when restoring from -data")
		trees     = flag.Int("trees", 0, "index trees per shard (0 = default 10); ignored when restoring from -data")
		seed      = flag.Uint64("seed", 42, "random seed; ignored when restoring from -data")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for builds, loads and batch queries")
		dataDir   = flag.String("data", "", "snapshot directory: restore from it on start if it holds a manifest")
		saveOnEnd = flag.Bool("save-on-shutdown", false, "snapshot the index into -data on graceful shutdown (requires -data)")
		autoComp  = flag.Bool("auto-compact", false, "background-compact small and tombstone-heavy shards after each seal")
		peers     = flag.String("peers", "", "comma-separated peer base URLs: ship every sealed shard to peers and serve as coordinator")
		replicas  = flag.Int("replicas", 1, "peers each shard is shipped to (N-way replication; requires -peers)")
		keepLocal = flag.Bool("keep-local", true, "retain in-process shard copies as last-resort replicas (false moves shards instead of replicating)")
		placement = flag.Duration("placement-interval", 0, "run the background placement controller with this pass interval (0 disables; requires -peers): auto-ship sealed shards, GC superseded hosted shards, probe peer health")
		probeIvl  = flag.Duration("probe-interval", 5*time.Second, "active peer health-probe cadence for the placement controller")
		rebalance = flag.Bool("rebalance", false, "re-ship replicas away from persistently unhealthy peers (requires -placement-interval)")
		peerMode  = flag.Bool("peer", false, "start with an empty index and host shards shipped by coordinators")
		cacheSize = flag.Int("cache", 0, "hot-query result cache entries (0 disables; invalidated automatically on any mutation)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
		metricsOn = flag.Bool("metrics", true, "expose Prometheus metrics on /metrics")
		tierName  = flag.String("tier", "", "shard storage tier: hot (fully decoded), cold (mmap-backed, lazy decode) or auto (by shard size and query frequency); empty keeps the snapshot's saved tier")
		slowQuery = flag.Duration("slow-query", 0, "log a structured line for /query requests over this duration (0 disables)")
		accessLog = flag.Bool("access-log", false, "log one structured line per HTTP request")
	)
	flag.Parse()

	if *saveOnEnd && *dataDir == "" {
		logger.Error("-save-on-shutdown requires -data")
		flag.Usage()
		os.Exit(2)
	}
	tier, err := shard.ParseTier(*tierName)
	if err != nil {
		logger.Error("bad -tier", "err", err)
		flag.Usage()
		os.Exit(2)
	}

	var ix *shard.Index
	start := time.Now()
	if *peerMode && *input == "" && (*dataDir == "" || !manifestExists(*dataDir)) {
		// A pure peer serves no collection of its own; it exists to host
		// shards shipped to /shard/snapshot by coordinators.
		if *threshold <= 0 || *threshold >= 1 {
			fatal("threshold out of (0,1)", "threshold", *threshold)
		}
		ix = shard.Build(nil, *threshold, &shard.Options{Workers: *workers, Seed: *seed, AutoCompact: *autoComp})
		logger.Info("peer mode: empty index", "addr", *addr)
	} else if *dataDir != "" && manifestExists(*dataDir) {
		var err error
		// The tier flag's raw value goes through: empty defers to the tier
		// the snapshot was saved under.
		ix, err = shard.LoadWithOptions(*dataDir, shard.LoadOptions{
			Workers: *workers,
			Tiering: shard.Tier(*tierName),
		})
		if err != nil {
			fatal("restore failed", "dir", *dataDir, "err", err)
		}
		st := ix.Stats()
		logger.Info("restored snapshot",
			"sets", st.Sets, "shards", st.Shards,
			"hot_shards", st.HotShards, "cold_shards", st.ColdShards,
			"partition", st.Partition,
			"dir", *dataDir, "seconds", time.Since(start).Seconds(), "addr", *addr)
	} else {
		if *input == "" {
			logger.Error("-input is required (no snapshot in -data)")
			flag.Usage()
			os.Exit(2)
		}
		if *threshold <= 0 || *threshold >= 1 {
			fatal("threshold out of (0,1)", "threshold", *threshold)
		}
		catalogue, err := ssjoin.LoadSets(*input)
		if err != nil {
			fatal("loading input failed", "input", *input, "err", err)
		}
		opts := &shard.Options{
			Shards:         *shards,
			MergeThreshold: *merge,
			Trees:          *trees,
			Seed:           *seed,
			Workers:        *workers,
			AutoCompact:    *autoComp,
		}
		if *hashPart {
			opts.Partition = shard.PartitionHash
		}
		ix = shard.Build(catalogue, *threshold, opts)
		st := ix.Stats()
		logger.Info("indexed collection",
			"sets", st.Sets, "shards", st.Shards, "partition", st.Partition,
			"nodes", st.Nodes, "seconds", time.Since(start).Seconds(), "addr", *addr)
	}

	if *placement > 0 && *peers == "" {
		logger.Error("-placement-interval requires -peers")
		flag.Usage()
		os.Exit(2)
	}
	if *peers != "" {
		peerList := strings.Split(*peers, ",")
		dopts := &shard.DistributeOptions{
			Replicas:  *replicas,
			KeepLocal: *keepLocal,
		}
		distStart := time.Now()
		if err := ix.Distribute(peerList, dopts); err != nil {
			fatal("distributing shards failed", "err", err)
		}
		st := ix.Stats()
		logger.Info("placed shards on peers",
			"remote_shards", st.RemoteShards, "peers", len(peerList),
			"replicas", *replicas, "keep_local", *keepLocal,
			"seconds", time.Since(distStart).Seconds())
		if *placement > 0 {
			err := ix.StartPlacement(peerList, dopts, &shard.PlacementOptions{
				Interval:      *placement,
				ProbeInterval: *probeIvl,
				Rebalance:     *rebalance,
			})
			if err != nil {
				fatal("starting placement controller failed", "err", err)
			}
			defer ix.StopPlacement()
			logger.Info("placement controller running",
				"interval", *placement, "probe_interval", *probeIvl, "rebalance", *rebalance)
		}
	}

	// One validated Configure call applies the runtime tuning (the old
	// per-setter calls are deprecated). Flags override what a restored
	// snapshot carried: -auto-compact always wins, -cache only when set
	// (so a snapshot's persisted cache size survives a plain restart).
	rt := ix.Runtime()
	rt.AutoCompact = *autoComp
	if *cacheSize > 0 {
		rt.CacheSize = *cacheSize
	}
	if *tierName != "" {
		rt.Tiering = tier
	}
	if err := ix.Configure(rt); err != nil {
		fatal("runtime configuration rejected", "err", err)
	}
	if rt.CacheSize > 0 {
		logger.Info("result cache enabled", "entries", rt.CacheSize)
	}
	if rt.Tiering != "" && rt.Tiering != shard.TierHot {
		st := ix.Stats()
		logger.Info("storage tiering active",
			"tier", string(rt.Tiering), "hot_shards", st.HotShards, "cold_shards", st.ColdShards)
	}

	var handler http.Handler = shard.NewServerOpts(ix, &shard.ServerOptions{
		SlowQuery:      *slowQuery,
		Logger:         logger,
		DisableMetrics: !*metricsOn,
	})
	if *slowQuery > 0 {
		logger.Info("slow-query log enabled", "threshold", *slowQuery)
	}
	if *pprofOn {
		// Register the pprof handlers explicitly on the opt-in mux (rather
		// than blank-importing net/http/pprof, whose side effect would put
		// them on http.DefaultServeMux even when -pprof is off).
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof endpoints enabled", "prefix", *addr+"/debug/pprof/")
	}
	if *accessLog {
		handler = withAccessLog(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listener failed", "err", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown so in-flight requests finish draining before exit.
	stop()
	<-drained
	if *saveOnEnd {
		saveStart := time.Now()
		if err := ix.Save(*dataDir); err != nil {
			fatal("save failed", "dir", *dataDir, "err", err)
		}
		st := ix.Stats()
		logger.Info("saved snapshot",
			"sets", st.Sets, "shards", st.Shards, "dir", *dataDir,
			"seconds", time.Since(saveStart).Seconds())
	}
	logger.Info("shut down")
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withAccessLog logs one structured line per request: method, path,
// status and duration.
func withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", time.Since(start))
	})
}

// manifestExists reports whether dir holds a snapshot to restore.
func manifestExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, snapshot.ManifestFile))
	return err == nil
}

// fatal logs the error and exits.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
