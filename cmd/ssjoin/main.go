// Command ssjoin runs a set similarity self-join over a dataset file.
//
// The input format is one set per line of whitespace-separated integer
// tokens (the format of the Mann et al. benchmark suite). Results are
// written one pair per line as "i j similarity" using 0-based line indices
// of the (cleaned) input.
//
// Usage:
//
//	ssjoin -input sets.txt -threshold 0.5 [-algorithm cpsjoin] [-seed 42]
//	       [-repetitions 10] [-stats] [-output pairs.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"

	ssjoin "repro"
)

func main() {
	var (
		input      = flag.String("input", "", "input dataset file (required)")
		input2     = flag.String("input2", "", "second dataset for an R-S join (R = -input, S = -input2; algorithms: cpsjoin, allpairs)")
		output     = flag.String("output", "", "output file (default stdout)")
		threshold  = flag.Float64("threshold", 0.5, "Jaccard similarity threshold in (0,1)")
		algorithm  = flag.String("algorithm", "cpsjoin", "join algorithm: cpsjoin, allpairs, ppjoin, minhash, bayeslsh, bruteforce")
		seed       = flag.Uint64("seed", 42, "random seed for approximate algorithms")
		reps       = flag.Int("repetitions", 0, "CPSJoin repetitions (0 = default 10)")
		recall     = flag.Float64("recall", 0, "target recall for minhash/bayeslsh (0 = default)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the join and preprocessing (1 = sequential; the reported pair set is independent of this, -stats counters may vary slightly)")
		noClean    = flag.Bool("no-clean", false, "skip duplicate/singleton removal")
		printStats = flag.Bool("stats", false, "print candidate statistics to stderr")
		saveIndex  = flag.String("save-index", "", "after preprocessing, persist the index to this file")
		loadIndex  = flag.String("load-index", "", "load a persisted index instead of -input (cpsjoin only)")
	)
	flag.Parse()

	if *input == "" && *loadIndex == "" {
		fmt.Fprintln(os.Stderr, "ssjoin: -input (or -load-index) is required")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold <= 0 || *threshold >= 1 {
		fatalf("threshold %v out of (0,1)", *threshold)
	}

	var (
		sets [][]uint32
		ix   *ssjoin.Index
		err  error
	)
	opts0 := &ssjoin.Options{Seed: *seed, Workers: *workers}
	switch {
	case *loadIndex != "":
		ix, err = ssjoin.LoadIndex(*loadIndex)
		if err != nil {
			fatalf("%v", err)
		}
		sets = ix.Sets()
		fmt.Fprintf(os.Stderr, "ssjoin: loaded index with %d sets\n", len(sets))
	default:
		sets, err = ssjoin.LoadSets(*input)
		if err != nil {
			fatalf("loading %s: %v", *input, err)
		}
		if !*noClean {
			before := len(sets)
			sets = ssjoin.CleanSets(sets)
			if removed := before - len(sets); removed > 0 {
				fmt.Fprintf(os.Stderr, "ssjoin: removed %d duplicate/singleton sets\n", removed)
			}
		}
	}
	if *saveIndex != "" {
		if ix == nil {
			ix = ssjoin.NewIndex(sets, opts0)
		}
		if err := ix.Save(*saveIndex); err != nil {
			fatalf("saving index: %v", err)
		}
		fmt.Fprintf(os.Stderr, "ssjoin: index saved to %s\n", *saveIndex)
	}

	opts := &ssjoin.Options{Seed: *seed, Repetitions: *reps, TargetRecall: *recall, Workers: *workers}

	var (
		pairs []ssjoin.Pair
		stats ssjoin.Stats
		sets2 [][]uint32
	)
	if *input2 != "" {
		sets2, err = ssjoin.LoadSets(*input2)
		if err != nil {
			fatalf("loading %s: %v", *input2, err)
		}
		if !*noClean {
			sets2 = ssjoin.CleanSets(sets2)
		}
		switch *algorithm {
		case "cpsjoin":
			pairs, stats = ssjoin.CPSJoinRS(sets, sets2, *threshold, opts)
		case "allpairs":
			pairs, stats = ssjoin.AllPairsRS(sets, sets2, *threshold, opts)
		default:
			fatalf("R-S joins support cpsjoin and allpairs, not %q", *algorithm)
		}
	} else if ix != nil && ssjoin.Algorithm(*algorithm) == ssjoin.AlgCPSJoin {
		// Reuse the loaded/saved preprocessing.
		pairs, stats = ix.CPSJoin(*threshold, opts)
	} else {
		pairs, stats, err = ssjoin.Join(sets, *threshold, ssjoin.Algorithm(*algorithm), opts)
		if err != nil {
			fatalf("%v", err)
		}
	}

	out := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	for _, p := range pairs {
		b := sets[p.B]
		if sets2 != nil {
			b = sets2[p.B]
		}
		fmt.Fprintf(w, "%d %d %.4f\n", p.A, p.B, ssjoin.Jaccard(sets[p.A], b))
	}
	if err := w.Flush(); err != nil {
		fatalf("writing output: %v", err)
	}

	if *printStats {
		fmt.Fprintf(os.Stderr, "ssjoin: %d pairs, %d pre-candidates, %d candidates verified\n",
			stats.Results, stats.PreCandidates, stats.Candidates)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ssjoin: "+format+"\n", args...)
	os.Exit(1)
}
