// Command search builds a Chosen Path similarity search index over a
// dataset file and answers point queries: for each query set, the ids of
// indexed sets with Jaccard similarity at least the threshold.
//
// Queries are read from -queries (same one-set-per-line format) or, if
// omitted, from standard input, one set per line. Output: one line per
// query with "queryIdx: id1:sim1 id2:sim2 ..." (empty after the colon if
// nothing was found).
//
// Usage:
//
//	search -input catalogue.txt -threshold 0.6 [-queries q.txt] [-all] [-trees 10] [-workers N]
//	       [-save-index ix.cps] [-load-index ix.cps]
//
// With -save-index the built index is snapshotted to a file after
// construction; with -load-index the index is restored from such a file
// instead of being built (so -input, -threshold, -trees and -seed are
// not needed — they are part of the snapshot).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"

	ssjoin "repro"
)

func main() {
	var (
		input     = flag.String("input", "", "catalogue dataset file (required)")
		queries   = flag.String("queries", "", "query dataset file (default: stdin)")
		threshold = flag.Float64("threshold", 0.5, "Jaccard similarity threshold in (0,1)")
		all       = flag.Bool("all", false, "report all matches per query instead of the best one")
		trees     = flag.Int("trees", 0, "number of index trees (0 = default 10)")
		seed      = flag.Uint64("seed", 42, "random seed")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for index construction (1 = sequential; the built index is identical for any value)")
		saveIndex = flag.String("save-index", "", "snapshot the built index to this file")
		loadIndex = flag.String("load-index", "", "restore the index from a snapshot file instead of building from -input")
	)
	flag.Parse()

	var index *ssjoin.SearchIndex
	if *loadIndex != "" {
		var err error
		index, err = ssjoin.LoadSearchIndex(*loadIndex, *workers)
		if err != nil {
			fatalf("restoring %s: %v", *loadIndex, err)
		}
		fmt.Fprintf(os.Stderr, "search: restored index from %s\n", *loadIndex)
	} else {
		if *input == "" {
			fmt.Fprintln(os.Stderr, "search: -input is required (or -load-index)")
			flag.Usage()
			os.Exit(2)
		}
		if *threshold <= 0 || *threshold >= 1 {
			fatalf("threshold %v out of (0,1)", *threshold)
		}
		catalogue, err := ssjoin.LoadSets(*input)
		if err != nil {
			fatalf("loading %s: %v", *input, err)
		}
		index = ssjoin.NewSearchIndex(catalogue, *threshold, &ssjoin.SearchOptions{
			Trees:   *trees,
			Seed:    *seed,
			Workers: *workers,
		})
		fmt.Fprintf(os.Stderr, "search: indexed %d sets\n", len(catalogue))
	}
	if *saveIndex != "" {
		if err := index.Save(*saveIndex); err != nil {
			fatalf("saving %s: %v", *saveIndex, err)
		}
		fmt.Fprintf(os.Stderr, "search: saved index to %s\n", *saveIndex)
	}

	var qsets [][]uint32
	var err error
	if *queries != "" {
		qsets, err = ssjoin.LoadSets(*queries)
		if err != nil {
			fatalf("loading %s: %v", *queries, err)
		}
	} else {
		qsets, err = ssjoin.ReadSets(os.Stdin)
		if err != nil {
			fatalf("reading queries: %v", err)
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for qi, q := range qsets {
		fmt.Fprintf(w, "%d:", qi)
		if *all {
			for _, m := range index.QueryAllSims(q) {
				fmt.Fprintf(w, " %d:%.3f", m.ID, m.Sim)
			}
		} else if id, sim, ok := index.Query(q); ok {
			fmt.Fprintf(w, " %d:%.3f", id, sim)
		}
		fmt.Fprintln(w)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "search: "+format+"\n", args...)
	os.Exit(1)
}
