package ssjoin

import (
	"strings"
	"testing"

	"repro/internal/intset"
)

// queryTestIndex builds a small index with planted containment structure:
// base sets plus strict supersets and subsets of set 0.
func queryTestIndex(t *testing.T) (*ShardedIndex, [][]uint32) {
	t.Helper()
	sets := [][]uint32{
		{1, 2, 3, 4, 5, 6},       // 0
		{1, 2, 3, 4, 5, 6, 7, 8}, // 1: superset of 0
		{1, 2, 3},                // 2: subset of 0
		{10, 11, 12, 13},         // 3: disjoint
		{4, 5, 6, 7},             // 4: overlaps 0 and 1
	}
	ix := NewShardedIndex(sets, 0.5, &ShardedOptions{
		Shards: 2, Seed: 99, Trees: 2, LeafSize: 1 << 20, Workers: 2,
	})
	return ix, sets
}

func TestSearchSimilarityModes(t *testing.T) {
	ix, sets := queryTestIndex(t)

	// Zero value = best-of similarity at λ.
	res, err := ix.Search(Query{Set: sets[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Best.ID != 0 || res.Best.Sim != 1.0 {
		t.Fatalf("self best-of = %+v", res)
	}

	// All similarity: every match over λ, ascending id.
	res, err = ix.Search(Query{Set: sets[0], All: true})
	if err != nil {
		t.Fatal(err)
	}
	wantAll := ix.QueryAll(sets[0])
	if !res.Found || len(res.Matches) != len(wantAll) {
		t.Fatalf("all-search %+v != QueryAll %v", res, wantAll)
	}
	for i := range wantAll {
		if res.Matches[i] != wantAll[i] {
			t.Fatalf("match %d: %+v != %+v", i, res.Matches[i], wantAll[i])
		}
	}

	// An explicit threshold above λ narrows: only matches at that
	// similarity or higher survive, and best-of misses entirely when the
	// best similarity is below it.
	res, err = ix.Search(Query{Set: sets[0], All: true, Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ID != 0 {
		t.Fatalf("tightened all-search kept %+v, want the exact self match", res.Matches)
	}
	// {4,5,6} best-matches set 4 at J=0.75 — over λ, under 0.99.
	res, err = ix.Search(Query{Set: []uint32{4, 5, 6}, Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Best.ID != -1 {
		t.Fatalf("tightened best-of found %+v, want miss", res)
	}

	// Limit re-ranks by score.
	res, err = ix.Search(Query{Set: sets[0], All: true, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ID != 0 || res.Matches[0].Sim != 1.0 {
		t.Fatalf("limit=1 kept %+v, want the self match", res.Matches)
	}

	// Thresholds below λ (the index cannot see there) and above 1 are
	// invalid; so are unknown modes.
	if _, err := ix.Search(Query{Set: sets[0], Threshold: 0.1}); err == nil ||
		!strings.Contains(err.Error(), "similarity threshold") {
		t.Fatalf("sub-λ threshold: %v", err)
	}
	if _, err := ix.Search(Query{Set: sets[0], Threshold: 1.5}); err == nil {
		t.Fatal("threshold 1.5 accepted")
	}
	if _, err := ix.Search(Query{Set: sets[0], Mode: "fuzzy"}); err == nil ||
		!strings.Contains(err.Error(), "unknown query mode") {
		t.Fatalf("unknown mode: %v", err)
	}
}

func TestSearchContainment(t *testing.T) {
	ix, sets := queryTestIndex(t)

	// Sets 0 and 1 fully contain set 2's tokens; set 0's probe finds its
	// supersets. Scores are the exact containment values.
	res, err := ix.Search(Query{Set: sets[2], Mode: ModeContainment, Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	wantFull := map[int]bool{0: true, 1: true, 2: true}
	if !res.Found || len(res.Matches) != len(wantFull) {
		t.Fatalf("full-containment matches %+v, want ids 0,1,2", res.Matches)
	}
	for _, m := range res.Matches {
		if !wantFull[m.ID] || m.Sim != 1.0 {
			t.Fatalf("full-containment match %+v", m)
		}
	}

	// At a lower threshold the answers equal brute force exactly on this
	// tiny collection (every set is also a buffered-or-sealed candidate at
	// this size; the structural guarantee tested here is exactness of the
	// returned scores and ordering).
	res, err = ix.Search(Query{Set: sets[0], Mode: ModeContainment, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.Matches {
		if i > 0 && res.Matches[i-1].ID >= m.ID {
			t.Fatalf("containment matches not ascending: %v", res.Matches)
		}
		sim, ok := intset.ContainmentAtLeast(sets[0], sets[m.ID], 0.5)
		if !ok || sim != m.Sim {
			t.Fatalf("match %+v disagrees with exact containment %v/%v", m, sim, ok)
		}
	}

	// The convenience form answers identically to Search.
	conv, err := ix.QueryContain(sets[2], 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, _ = ix.Search(Query{Set: sets[2], Mode: ModeContainment, Threshold: 1.0})
	if len(conv) != len(res.Matches) {
		t.Fatalf("QueryContain %v != Search %v", conv, res.Matches)
	}
	for i := range conv {
		if conv[i] != res.Matches[i] {
			t.Fatalf("QueryContain[%d] %+v != Search %+v", i, conv[i], res.Matches[i])
		}
	}

	// Containment needs an explicit threshold in (0,1].
	for _, bad := range []float64{0, -1, 1.01} {
		if _, err := ix.Search(Query{Set: sets[2], Mode: ModeContainment, Threshold: bad}); err == nil {
			t.Fatalf("containment threshold %v accepted", bad)
		}
	}

	// Unnormalized input is normalized on entry.
	raw := []uint32{3, 1, 2, 2, 1}
	a, _ := ix.QueryContain(raw, 1.0)
	b, _ := ix.QueryContain([]uint32{1, 2, 3}, 1.0)
	if len(a) != len(b) {
		t.Fatalf("unnormalized probe answers %v, normalized %v", a, b)
	}
}

// TestConfigureFacade: the consolidated runtime configuration round-trips
// through the facade and survives Save/Load without changing answers.
func TestConfigureFacade(t *testing.T) {
	ix, sets := queryTestIndex(t)
	if err := ix.Configure(RuntimeOptions{CacheSize: -3}); err == nil {
		t.Fatal("negative cache size accepted")
	}
	want := RuntimeOptions{PointerLayout: true, CacheSize: 8}
	if err := ix.Configure(want); err != nil {
		t.Fatal(err)
	}
	if got := ix.Runtime(); got != want {
		t.Fatalf("Runtime() = %+v, want %+v", got, want)
	}

	dir := t.TempDir()
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadShardedIndex(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Runtime(); got != want {
		t.Fatalf("Runtime() after reload = %+v, want %+v", got, want)
	}
	for i, q := range sets {
		a, err1 := ix.Search(Query{Set: q, All: true})
		b, err2 := loaded.Search(Query{Set: q, All: true})
		if err1 != nil || err2 != nil {
			t.Fatalf("probe %d: errs %v / %v", i, err1, err2)
		}
		if len(a.Matches) != len(b.Matches) {
			t.Fatalf("probe %d: answers changed across configured reload", i)
		}
		for j := range a.Matches {
			if a.Matches[j] != b.Matches[j] {
				t.Fatalf("probe %d match %d changed across configured reload", i, j)
			}
		}
	}
}
