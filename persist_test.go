package ssjoin

import (
	"path/filepath"
	"testing"
)

// TestSearchIndexSaveLoad pins the public persistence contract of the
// monolithic index: a loaded snapshot answers every query identically to
// the index it was saved from.
func TestSearchIndexSaveLoad(t *testing.T) {
	sets := GenerateUniform(800, 25, 40000, 71)
	sets, _ = PlantSimilarPairs(sets, 30, 0.8, 72)
	ix := NewSearchIndex(sets, 0.5, &SearchOptions{Seed: 5, Workers: 4})

	path := filepath.Join(t.TempDir(), "search.cps")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		back, err := LoadSearchIndex(path, workers)
		if err != nil {
			t.Fatal(err)
		}
		want := ix.QueryBatch(sets[:200])
		got := back.QueryBatch(sets[:200])
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d: query %d: %d matches, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: query %d match %d differs", workers, i, j)
				}
			}
		}
	}

	// A corrupted file must error, not panic.
	if _, err := LoadSearchIndex(filepath.Join(t.TempDir(), "missing.cps"), 1); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

// TestShardedIndexSaveLoadDelete drives the full public lifecycle:
// build, append, delete (sealed and side-buffered ids), save, load,
// verify equivalence and tombstone filtering, then keep appending.
func TestShardedIndexSaveLoadDelete(t *testing.T) {
	sets := GenerateUniform(1000, 25, 40000, 73)
	sets, _ = PlantSimilarPairs(sets, 30, 0.8, 74)
	extra := GenerateUniform(40, 25, 40000, 75)

	ix := NewShardedIndex(sets, 0.5, &ShardedOptions{
		Shards: 3, HashPartition: true, Seed: 7, MergeThreshold: 500, Workers: 4,
	})
	ids := ix.Add(extra)

	sideVictim := ids[3]
	if !ix.Delete(5) || !ix.Delete(sideVictim) {
		t.Fatal("Delete of live ids failed")
	}
	if ix.Len() != len(sets)+len(extra)-2 {
		t.Fatalf("Len = %d after deletes", ix.Len())
	}

	dir := t.TempDir()
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadShardedIndex(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ix.Len() {
		t.Fatalf("loaded Len %d, want %d", back.Len(), ix.Len())
	}

	queries := append(append([][]uint32{}, sets[:100]...), extra...)
	want := ix.QueryBatch(queries)
	got := back.QueryBatch(queries)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d matches, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d match %d differs after reload", i, j)
			}
		}
	}
	for _, q := range [][]uint32{sets[5], extra[3]} {
		for _, m := range back.QueryAll(q) {
			if m.ID == 5 || m.ID == sideVictim {
				t.Fatalf("deleted id %d served after reload", m.ID)
			}
		}
	}

	// Appends continue from the id high-water mark.
	more := GenerateUniform(5, 25, 40000, 76)
	newIDs := back.Add(more)
	if newIDs[0] != len(sets)+len(extra) {
		t.Fatalf("first id after reload = %d, want %d", newIDs[0], len(sets)+len(extra))
	}
	if st := back.Stats(); st.Deletes != 2 {
		t.Fatalf("delete counter lost across reload: %+v", st)
	}
}
