package ssjoin

import (
	"fmt"
	"sort"

	"repro/internal/intset"
	"repro/internal/shard"
)

// QueryMode selects the semantics of a Query: what "match" means and
// what the threshold is measured against.
type QueryMode string

const (
	// ModeSimilarity matches indexed sets by Jaccard similarity
	// J(q, x) = |q ∩ x| / |q ∪ x| — the CPSJoin workload the index is
	// built for. The index's build threshold λ is the floor; a Query
	// threshold may narrow results further but never below λ.
	ModeSimilarity QueryMode = "similarity"
	// ModeContainment matches indexed sets by Jaccard containment
	// C(q, x) = |q ∩ x| / |q| — "find indexed sets that contain most of
	// my query", the domain-discovery workload of LSH Ensemble (Zhu et
	// al., VLDB 2016). The threshold is per query, anywhere in (0,1].
	ModeContainment QueryMode = "containment"
)

// Query is one search request against a ShardedIndex — the single
// request shape of the query-mode API.
type Query struct {
	// Set is the query set; it is normalized (sorted, deduplicated) on
	// entry, so callers may pass raw token ids.
	Set []uint32
	// Mode selects the search semantics; the zero value means
	// ModeSimilarity.
	Mode QueryMode
	// Threshold is the match floor. In similarity mode, zero means the
	// index's build threshold λ, and explicit values must lie in [λ, 1] —
	// the index cannot see below the threshold it was built for. In
	// containment mode it is required, in (0,1].
	Threshold float64
	// All requests every match instead of the single best one.
	// Containment queries always return every match, so All is implied
	// there.
	All bool
	// Limit, when positive, re-ranks the matches by score (ties broken
	// toward the lower id) and keeps the top Limit. Zero keeps every
	// match in canonical ascending-id order.
	Limit int
}

// Result is a Search answer. Found reports whether anything matched.
// Best is the single best match of a best-of similarity query (All
// false); its ID is -1 when it does not apply. Matches carries the match
// list of All similarity queries and of every containment query.
type Result struct {
	Found   bool
	Best    Match
	Matches []Match
}

// Search is the single entry point of the query-mode API: one request
// shape, one error-returning path, both workloads. The deprecated
// Query/QueryAll/QueryBatch wrappers forward to the same machinery.
//
// Every mode is deterministic: answers are byte-identical across shard
// counts, partition schemes, worker counts and distributed topologies.
// The only error sources are an invalid request (mode or threshold) and
// a dead distributed topology (a shard moved to peers with no live
// replica and no retained local copy).
func (s *ShardedIndex) Search(q Query) (Result, error) {
	set := intset.Normalize(q.Set)
	switch q.Mode {
	case "", ModeSimilarity:
		return s.searchSimilarity(set, q)
	case ModeContainment:
		return s.searchContainment(set, q)
	default:
		return Result{}, fmt.Errorf("ssjoin: unknown query mode %q (want %q or %q)",
			q.Mode, ModeSimilarity, ModeContainment)
	}
}

func (s *ShardedIndex) searchSimilarity(set []uint32, q Query) (Result, error) {
	lambda := s.ix.Lambda()
	t := q.Threshold
	if t == 0 {
		t = lambda
	}
	if t < lambda || t > 1 {
		return Result{}, fmt.Errorf(
			"ssjoin: similarity threshold %v outside [%v, 1] — the index only sees matches at its build threshold λ=%v or above",
			q.Threshold, lambda, lambda)
	}
	if !q.All {
		id, sim, ok, err := s.ix.QueryErr(set)
		if err != nil {
			return Result{}, err
		}
		if !ok || sim < t {
			return Result{Best: Match{ID: -1}}, nil
		}
		return Result{Found: true, Best: Match{ID: id, Sim: sim}}, nil
	}
	raw, err := s.ix.QueryAllErr(set)
	if err != nil {
		return Result{}, err
	}
	ms := toMatches(raw)
	if t > lambda {
		kept := ms[:0]
		for _, m := range ms {
			if m.Sim >= t {
				kept = append(kept, m)
			}
		}
		ms = kept
	}
	ms = rankLimit(ms, q.Limit)
	return Result{Found: len(ms) > 0, Best: Match{ID: -1}, Matches: ms}, nil
}

func (s *ShardedIndex) searchContainment(set []uint32, q Query) (Result, error) {
	raw, err := s.ix.QueryContain(set, q.Threshold)
	if err != nil {
		return Result{}, err
	}
	ms := rankLimit(toMatches(raw), q.Limit)
	return Result{Found: len(ms) > 0, Best: Match{ID: -1}, Matches: ms}, nil
}

// QueryContain is the convenience form of a containment Search: every
// indexed set x with |q ∩ x| / |q| >= t, scored by the exact containment
// value and sorted by ascending id.
func (s *ShardedIndex) QueryContain(q []uint32, t float64) ([]Match, error) {
	ms, err := s.ix.QueryContain(intset.Normalize(q), t)
	if err != nil {
		return nil, err
	}
	return toMatches(ms), nil
}

// rankLimit applies Query.Limit: re-rank by score descending (ties by
// ascending id) and keep the top n. Non-positive limits return the input
// untouched in canonical id order.
func rankLimit(ms []Match, limit int) []Match {
	if limit <= 0 {
		return ms
	}
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Sim != ms[j].Sim {
			return ms[i].Sim > ms[j].Sim
		}
		return ms[i].ID < ms[j].ID
	})
	if len(ms) > limit {
		ms = ms[:limit]
	}
	return ms
}

// RuntimeOptions is the consolidated post-construction configuration of
// a ShardedIndex: everything that tunes a built or loaded index without
// changing its answers. See ShardedIndex.Configure.
type RuntimeOptions = shard.RuntimeOptions

// Tier names a shard storage tier for RuntimeOptions.Tiering and
// LoadOptions.Tiering: TierHot fully decodes every shard, TierCold
// memory-maps shards with lazy decode, TierAuto picks per shard by size
// and retiers on query frequency. Answers are byte-identical across
// tiers; only memory and latency differ.
type Tier = shard.Tier

// Storage tiers (see Tier).
const (
	TierHot  = shard.TierHot
	TierCold = shard.TierCold
	TierAuto = shard.TierAuto
)

// Configure applies the runtime configuration in one validated call —
// the replacement for the SetAutoCompact / SetPointerLayout /
// EnableCache setter sprawl. It is idempotent, and the applied state is
// saved with the index and re-applied automatically by
// LoadShardedIndex, so callers no longer re-apply layout and cache by
// hand after a restart.
func (s *ShardedIndex) Configure(ro RuntimeOptions) error {
	return s.ix.Configure(ro)
}

// Runtime reports the currently applied runtime configuration.
func (s *ShardedIndex) Runtime() RuntimeOptions {
	return s.ix.Runtime()
}
