GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race race-full vet fmt bench bench-micro bench-smoke bench-go fuzz-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the quick local loop (-short skips the slowest suites);
# race-full runs the entire suite under the race detector and is what CI
# runs — same name, same meaning, locally and in CI.
race:
	$(GO) test -race -short ./...

race-full:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offending files) if any file needs gofmt — the
# same gate CI enforces.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench records the performance trajectory for cross-PR comparison:
# parallel join scaling (every algorithm at every worker count, with the
# determinism check), sharded-serving batch-query throughput (every
# shard count at every worker count, with the same check), the query
# microbenchmarks, and the containment-search accuracy rows
# (precision/recall/F1 vs brute-force ground truth, recall gated in CI).
bench:
	$(GO) run ./cmd/experiments -quiet -format json parallel > BENCH_parallel.json
	@echo "wrote BENCH_parallel.json"
	$(GO) run ./cmd/experiments -quiet -format json serving > BENCH_serving.json
	@echo "wrote BENCH_serving.json"
	$(GO) run ./cmd/experiments -quiet -format json query > BENCH_query.json
	@echo "wrote BENCH_query.json"
	$(GO) run ./cmd/experiments -quiet -format json accuracy > BENCH_accuracy.json
	@echo "wrote BENCH_accuracy.json"

# bench-micro records just the point-query microbenchmarks (Query /
# QueryAll / QueryBatch ns/op, allocs/op and qps across the flat vs
# pointer layout and result-cache dimensions, measured with
# testing.Benchmark). Every row's answers are checked identical to the
# flat uncached reference, and CI additionally requires the cpindex flat
# rows to report 0 allocs/op.
bench-micro:
	$(GO) run ./cmd/experiments -quiet -format json query > BENCH_query.json
	@echo "wrote BENCH_query.json"

# bench-smoke is the reduced bench CI runs on every PR (small synthetic
# datasets, same JSON schema): the per-PR perf trajectory the ROADMAP
# asks for, uploaded as workflow artifacts.
bench-smoke:
	$(GO) run ./cmd/experiments -quiet -format json -scale smoke parallel > BENCH_parallel.json
	@echo "wrote BENCH_parallel.json (smoke scale)"
	$(GO) run ./cmd/experiments -quiet -format json -scale smoke serving > BENCH_serving.json
	@echo "wrote BENCH_serving.json (smoke scale)"
	$(GO) run ./cmd/experiments -quiet -format json -scale smoke query > BENCH_query.json
	@echo "wrote BENCH_query.json (smoke scale)"
	$(GO) run ./cmd/experiments -quiet -format json -scale smoke accuracy > BENCH_accuracy.json
	@echo "wrote BENCH_accuracy.json (smoke scale)"

# bench-go runs the Go testing benchmarks for the same scaling curves.
bench-go:
	$(GO) test -run '^$$' -bench 'Parallel' -benchmem .

# fuzz-smoke runs each native fuzz target briefly (FUZZTIME per target,
# default 10s) against the decode surfaces: the snapshot container, the
# directory manifest, and the cpindex codec — plus the flat/pointer
# layout equivalence on whatever the codec accepts (FuzzDecodeLayouts).
# The corpus seeds are valid snapshots; the contract is error-not-panic
# on any mutation. FuzzMappedDecode covers the lazy mmap-backed decoder
# with the eager decoder as a differential oracle. CI runs this on every
# PR; crashers land in testdata/fuzz/ for replay.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzContainer$$' -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/cpindex
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeLayouts$$' -fuzztime $(FUZZTIME) ./internal/cpindex
	$(GO) test -run '^$$' -fuzz '^FuzzMappedDecode$$' -fuzztime $(FUZZTIME) ./internal/cpindex

clean:
	rm -f BENCH_parallel.json BENCH_serving.json BENCH_query.json BENCH_accuracy.json
