GO ?= go

.PHONY: all build test race vet bench bench-go clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# bench records the performance trajectory for cross-PR comparison:
# parallel join scaling (every algorithm at every worker count, with the
# determinism check) and sharded-serving batch-query throughput (every
# shard count at every worker count, with the same check).
bench:
	$(GO) run ./cmd/experiments -quiet -format json parallel > BENCH_parallel.json
	@echo "wrote BENCH_parallel.json"
	$(GO) run ./cmd/experiments -quiet -format json serving > BENCH_serving.json
	@echo "wrote BENCH_serving.json"

# bench-go runs the Go testing benchmarks for the same scaling curves.
bench-go:
	$(GO) test -run '^$$' -bench 'Parallel' -benchmem .

clean:
	rm -f BENCH_parallel.json BENCH_serving.json
