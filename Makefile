GO ?= go

.PHONY: all build test race vet bench bench-go clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# bench records the parallel-scaling trajectory: every algorithm at every
# worker count on the synthetic workloads, with the determinism check,
# emitted as BENCH_parallel.json for cross-PR comparison.
bench:
	$(GO) run ./cmd/experiments -quiet -format json parallel > BENCH_parallel.json
	@echo "wrote BENCH_parallel.json"

# bench-go runs the Go testing benchmarks for the same scaling curves.
bench-go:
	$(GO) test -run '^$$' -bench 'Parallel' -benchmem .

clean:
	rm -f BENCH_parallel.json
