// Package ssjoin provides scalable and robust set similarity joins.
//
// It is a Go reproduction of "Scalable and Robust Set Similarity Join"
// (Christiani, Pagh, Sivertsen — ICDE 2018). The headline algorithm is
// CPSJoin, a randomized (λ, ϕ)-similarity join: every pair of sets with
// Jaccard similarity at least λ is reported with probability at least ϕ,
// and nothing below λ is ever reported (100% precision). On data without
// rare tokens, CPSJoin outperforms exact prefix-filtering joins by one to
// three orders of magnitude at 90% recall.
//
// The package also ships the paper's comparators — the exact ALLPAIRS and
// PPJoin algorithms, a MinHash LSH join, and a BayesLSH-lite join — plus
// dataset IO, synthetic workload generators, and the LSH embedding that
// extends the join to any LSHable similarity measure.
//
// Sets are represented as strictly increasing []uint32 token lists; use
// NormalizeSet to build them from arbitrary token slices.
package ssjoin

import (
	"fmt"

	"repro/internal/allpairs"
	"repro/internal/bayeslsh"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/lshjoin"
	"repro/internal/ppjoin"
	"repro/internal/stats"
	"repro/internal/verify"
)

// Pair is one join result: indices of two similar sets in the input
// collection, with A < B for self-joins. For R-S joins, A indexes R and B
// indexes S.
type Pair struct {
	A, B int
}

// Stats reports candidate-generation statistics of a join run, in the
// terms of Table IV of the paper.
type Stats struct {
	// PreCandidates is the number of pairs the algorithm examined.
	PreCandidates int64
	// Candidates is the number of pairs that reached exact verification.
	Candidates int64
	// Results is the number of reported pairs.
	Results int64
}

// Options tunes the approximate join algorithms. The zero value reproduces
// the paper's final parameter settings (Table III).
type Options struct {
	// Seed makes runs reproducible. Two runs with the same seed, input and
	// options return identical results — including across different
	// Workers values.
	Seed uint64
	// Repetitions is the number of independent CPSJoin runs (default 10).
	Repetitions int
	// TargetRecall is the per-pair recall ϕ for MinHashJoin and
	// BayesLSHJoin repetition counts (default 0.9 and 0.95 respectively).
	TargetRecall float64
	// T is the MinHash signature length (default 128).
	T int
	// Limit is CPSJoin's brute-force size threshold (default 250).
	Limit int
	// Epsilon is CPSJoin's brute-force aggressiveness (default 0.1). Set
	// EpsilonSet to use a zero Epsilon.
	Epsilon    float64
	EpsilonSet bool
	// SketchWords is the 1-bit minwise sketch width in 64-bit words
	// (default 8). A negative value disables sketch filtering — uniformly,
	// for every algorithm: CPSJoin and MinHashJoin skip the sketch
	// pre-filter, and BayesLSHJoin skips its incremental sketch pruning
	// (candidates go straight from the size filter to exact
	// verification).
	SketchWords int
	// Delta is the sketch false-negative probability (default 0.05).
	Delta float64
	// K fixes the number of concatenated hashes for MinHashJoin
	// (0 = choose automatically by cost estimation).
	K int
	// Workers is the number of worker goroutines of the parallel
	// execution layer shared by every join algorithm and by index
	// construction: 0 (the default) runs sequentially, negative selects
	// runtime.GOMAXPROCS(0), positive is taken as given. For a fixed Seed
	// the result set is identical across worker counts; only the
	// candidate Stats can drift by the few pairs that concurrent workers
	// examine twice.
	Workers int
}

func (o *Options) cps() *core.Options {
	if o == nil {
		return nil
	}
	return &core.Options{
		T:           o.T,
		Limit:       o.Limit,
		Epsilon:     o.Epsilon,
		EpsilonSet:  o.EpsilonSet,
		SketchWords: o.SketchWords,
		Delta:       o.Delta,
		Repetitions: o.Repetitions,
		Seed:        o.Seed,
		Workers:     o.Workers,
	}
}

func (o *Options) lsh() *lshjoin.Options {
	if o == nil {
		return nil
	}
	return &lshjoin.Options{
		K:            o.K,
		TargetRecall: o.TargetRecall,
		T:            o.T,
		SketchWords:  o.SketchWords,
		Delta:        o.Delta,
		Seed:         o.Seed,
		Workers:      o.Workers,
	}
}

func (o *Options) bayes() *bayeslsh.Options {
	if o == nil {
		return nil
	}
	// SketchWords passes through raw: negative disables sketching here
	// exactly as it does for cps() and lsh() above.
	return &bayeslsh.Options{
		TargetRecall: o.TargetRecall,
		SketchWords:  o.SketchWords,
		T:            o.T,
		Seed:         o.Seed,
		Workers:      o.Workers,
	}
}

// workers extracts the Workers knob for the exact algorithms, which take
// no other options.
func (o *Options) workers() int {
	if o == nil {
		return 0
	}
	return o.Workers
}

func fromPairs(in []verify.Pair) []Pair {
	if len(in) == 0 {
		return nil
	}
	out := make([]Pair, len(in))
	for i, p := range in {
		out[i] = Pair{A: int(p.A), B: int(p.B)}
	}
	return out
}

func toPairs(in []Pair) []verify.Pair {
	out := make([]verify.Pair, len(in))
	for i, p := range in {
		out[i] = verify.MakePair(uint32(p.A), uint32(p.B))
	}
	return out
}

func fromCounters(c verify.Counters) Stats {
	return Stats{PreCandidates: c.PreCandidates, Candidates: c.Candidates, Results: c.Results}
}

// CPSJoin computes an approximate self-join at Jaccard threshold lambda
// using the Chosen Path Similarity Join. With default options (10
// repetitions) recall exceeds 90% on the paper's workloads; precision is
// always 100%.
func CPSJoin(sets [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := core.Join(sets, lambda, opts.cps())
	return fromPairs(pairs), fromCounters(c)
}

// CPSJoinRS computes an approximate R-S join: pairs (i, j) with
// J(r[i], s[j]) >= lambda, where Pair.A indexes r and Pair.B indexes s.
func CPSJoinRS(r, s [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := core.JoinRS(r, s, lambda, opts.cps())
	return fromPairs(pairs), fromCounters(c)
}

// BraunBlanquetJoin computes an approximate self-join under Braun-Blanquet
// similarity BB(x, y) = |x∩y|/max(|x|, |y|), running the paper's
// Algorithms 1-2 directly on the raw (variable-size) sets — the
// generalization beyond the fixed-size embedding that Section II-A notes
// is straightforward. Same precision/recall contract as CPSJoin.
func BraunBlanquetJoin(sets [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	var bb *core.BBOptions
	if opts != nil {
		bb = &core.BBOptions{
			Limit:       opts.Limit,
			Epsilon:     opts.Epsilon,
			EpsilonSet:  opts.EpsilonSet,
			Repetitions: opts.Repetitions,
			Seed:        opts.Seed,
			Workers:     opts.Workers,
		}
	}
	pairs, c := core.JoinBB(sets, lambda, bb)
	return fromPairs(pairs), fromCounters(c)
}

// BruteForceBB computes the exact Braun-Blanquet self-join by exhaustive
// verification — ground truth for BraunBlanquetJoin.
func BruteForceBB(sets [][]uint32, lambda float64) []Pair {
	return fromPairs(core.BruteForceJoinBB(sets, lambda))
}

// BraunBlanquet returns |a∩b|/max(|a|, |b|) for two normalized sets.
func BraunBlanquet(a, b []uint32) float64 {
	return intset.BraunBlanquet(a, b)
}

// AllPairs computes the exact self-join with the ALLPAIRS prefix-filtering
// algorithm (Bayardo et al.), the paper's exact baseline. Exact algorithms
// consult only Workers from opts (nil runs sequentially); results are
// identical for any worker count.
func AllPairs(sets [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := allpairs.JoinWorkers(sets, lambda, opts.workers())
	return fromPairs(pairs), fromCounters(c)
}

// AllPairsRS computes the exact R-S join with prefix filtering: pairs
// (i, j) with J(r[i], s[j]) >= lambda, where Pair.A indexes r and Pair.B
// indexes s. Exact algorithms consult only Workers from opts.
func AllPairsRS(r, s [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := allpairs.JoinRSWorkers(r, s, lambda, opts.workers())
	return fromPairs(pairs), fromCounters(c)
}

// PPJoin computes the exact self-join with positional filtering (Xiao et
// al.), a second member of the prefix-filter family. Exact algorithms
// consult only Workers from opts.
func PPJoin(sets [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := ppjoin.JoinWorkers(sets, lambda, opts.workers())
	return fromPairs(pairs), fromCounters(c)
}

// MinHashJoin computes an approximate self-join with classic MinHash LSH
// (Algorithm 3 of the paper), auto-selecting the bucket width k.
func MinHashJoin(sets [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := lshjoin.Join(sets, lambda, opts.lsh())
	return fromPairs(pairs), fromCounters(c)
}

// BayesLSHJoin computes an approximate self-join in the style of
// BayesLSH-lite: single-hash LSH candidate generation with incremental
// sketch pruning before exact verification.
func BayesLSHJoin(sets [][]uint32, lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := bayeslsh.Join(sets, lambda, opts.bayes())
	return fromPairs(pairs), fromCounters(c)
}

// BruteForce computes the exact self-join by verifying all O(n²) pairs.
// It is the ground truth for recall measurements.
func BruteForce(sets [][]uint32, lambda float64) []Pair {
	return fromPairs(verify.BruteForceJoin(sets, lambda))
}

// Algorithm names a join implementation for the generic Join dispatcher.
type Algorithm string

// The available join algorithms.
const (
	AlgCPSJoin    Algorithm = "cpsjoin"
	AlgAllPairs   Algorithm = "allpairs"
	AlgPPJoin     Algorithm = "ppjoin"
	AlgMinHash    Algorithm = "minhash"
	AlgBayesLSH   Algorithm = "bayeslsh"
	AlgBruteForce Algorithm = "bruteforce"
)

// Algorithms lists every algorithm accepted by Join.
func Algorithms() []Algorithm {
	return []Algorithm{AlgCPSJoin, AlgAllPairs, AlgPPJoin, AlgMinHash, AlgBayesLSH, AlgBruteForce}
}

// Join dispatches to the named algorithm. Exact algorithms consult only
// opts.Workers.
func Join(sets [][]uint32, lambda float64, alg Algorithm, opts *Options) ([]Pair, Stats, error) {
	switch alg {
	case AlgCPSJoin:
		p, s := CPSJoin(sets, lambda, opts)
		return p, s, nil
	case AlgAllPairs:
		p, s := AllPairs(sets, lambda, opts)
		return p, s, nil
	case AlgPPJoin:
		p, s := PPJoin(sets, lambda, opts)
		return p, s, nil
	case AlgMinHash:
		p, s := MinHashJoin(sets, lambda, opts)
		return p, s, nil
	case AlgBayesLSH:
		p, s := BayesLSHJoin(sets, lambda, opts)
		return p, s, nil
	case AlgBruteForce:
		p := BruteForce(sets, lambda)
		return p, Stats{Results: int64(len(p))}, nil
	default:
		return nil, Stats{}, fmt.Errorf("ssjoin: unknown algorithm %q", alg)
	}
}

// Jaccard returns the Jaccard similarity |a∩b|/|a∪b| of two normalized
// sets.
func Jaccard(a, b []uint32) float64 {
	return intset.Jaccard(a, b)
}

// NormalizeSet sorts s and removes duplicate tokens in place, returning a
// valid set representation.
func NormalizeSet(s []uint32) []uint32 {
	return intset.Normalize(s)
}

// Recall returns the fraction of truth pairs present in got.
func Recall(got, truth []Pair) float64 {
	return stats.Recall(toPairs(got), toPairs(truth))
}

// Precision returns the fraction of got pairs present in truth.
func Precision(got, truth []Pair) float64 {
	return stats.Precision(toPairs(got), toPairs(truth))
}
