package ssjoin

// One testing.B benchmark per table and figure of the paper's evaluation.
// These run the same code paths as cmd/experiments at a benchmark-friendly
// scale; use `go run ./cmd/experiments` for the full harness with recall
// accounting and the paper's output layout.
//
//	BenchmarkTable1Stats      — Table I  (dataset statistics)
//	BenchmarkTable2/...       — Table II (join time per dataset/algo/λ)
//	BenchmarkFig2Speedup/...  — Figure 2 (CP and ALL on the same workload)
//	BenchmarkFig3Limit/...    — Figure 3a (brute-force limit sweep)
//	BenchmarkFig3Epsilon/...  — Figure 3b (ε sweep)
//	BenchmarkFig3Sketch/...   — Figure 3c (sketch width sweep)
//	BenchmarkTable4Candidates — Table IV (candidate statistics)
//	BenchmarkTokensRobustness — Section VI-A.3 (TOKENS progression)
//	BenchmarkStopping/...     — Section IV-C.5 ablation
//	BenchmarkBayesLSH         — Section VI-A.2 comparison

import (
	"fmt"
	"testing"

	"repro/internal/allpairs"
	"repro/internal/bayeslsh"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lshjoin"
	"repro/internal/ppjoin"
	"repro/internal/verify"
)

// benchScale keeps benchmark workloads small enough for -bench=. runs.
func benchScale() bench.Scale {
	return bench.Scale{ProfileSets: 1500, UniformSets: 1500, TokensCap: 120, Seed: 2018}
}

var workloadCache = map[string]bench.Workload{}

func benchWorkload(b *testing.B, name string) bench.Workload {
	b.Helper()
	if w, ok := workloadCache[name]; ok {
		return w
	}
	w, err := bench.WorkloadByName(name, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	workloadCache[name] = w
	return w
}

func BenchmarkTable1Stats(b *testing.B) {
	ws := bench.AllWorkloads(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunTable1(ws)
	}
}

// benchDatasets is the subset of Table II datasets exercised per benchmark
// run: one prefix-filter-friendly, one dense, one adversarial.
var benchDatasets = []string{"AOL", "NETFLIX", "TOKENS10K", "UNIFORM005"}

func BenchmarkTable2(b *testing.B) {
	for _, name := range benchDatasets {
		w := benchWorkload(b, name)
		ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
		for _, lambda := range []float64{0.5, 0.7, 0.9} {
			b.Run(fmt.Sprintf("%s/CP/λ=%.1f", name, lambda), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.JoinIndexed(ix, lambda, &core.Options{Seed: 42})
				}
			})
			b.Run(fmt.Sprintf("%s/MH/λ=%.1f", name, lambda), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					lshjoin.JoinIndexed(ix, lambda, &lshjoin.Options{Seed: 42})
				}
			})
			b.Run(fmt.Sprintf("%s/ALL/λ=%.1f", name, lambda), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					allpairs.Join(w.Sets, lambda)
				}
			})
		}
	}
}

func BenchmarkFig2Speedup(b *testing.B) {
	// Figure 2 is the CP/ALL ratio; benchmark both on the same workload so
	// the reported ns/op ratio is the speedup.
	w := benchWorkload(b, "TOKENS10K")
	ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
	b.Run("CP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42})
		}
	})
	b.Run("ALL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			allpairs.Join(w.Sets, 0.5)
		}
	})
}

func BenchmarkFig3Limit(b *testing.B) {
	w := benchWorkload(b, "UNIFORM005")
	ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
	for _, limit := range bench.Fig3Limits {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42, Limit: limit})
			}
		})
	}
}

func BenchmarkFig3Epsilon(b *testing.B) {
	w := benchWorkload(b, "UNIFORM005")
	ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
	for _, eps := range bench.Fig3Epsilons {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42, Epsilon: eps, EpsilonSet: true})
			}
		})
	}
}

func BenchmarkFig3Sketch(b *testing.B) {
	w := benchWorkload(b, "UNIFORM005")
	for _, words := range bench.Fig3Words {
		ix := core.Preprocess(w.Sets, &core.Options{Seed: 42, SketchWords: words})
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42, SketchWords: words})
			}
		})
	}
}

func BenchmarkTable4Candidates(b *testing.B) {
	w := benchWorkload(b, "TOKENS10K")
	ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
	var sink verify.Counters
	b.Run("ALL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, sink = allpairs.Join(w.Sets, 0.5)
		}
	})
	b.Run("CP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, sink = core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42})
		}
	})
	_ = sink
}

func BenchmarkTokensRobustness(b *testing.B) {
	for _, name := range []string{"TOKENS10K", "TOKENS15K", "TOKENS20K"} {
		w := benchWorkload(b, name)
		ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
		b.Run(name+"/CP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42})
			}
		})
		b.Run(name+"/ALL", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				allpairs.Join(w.Sets, 0.5)
			}
		})
	}
}

func BenchmarkStopping(b *testing.B) {
	w := benchWorkload(b, "UNIFORM005")
	ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
	for name, stop := range map[string]core.Stopping{
		"adaptive":   core.StopAdaptive,
		"global":     core.StopGlobal,
		"individual": core.StopIndividual,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42, Stopping: stop})
			}
		})
	}
}

func BenchmarkBayesLSH(b *testing.B) {
	w := benchWorkload(b, "UNIFORM005")
	ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
	b.Run("bayeslsh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bayeslsh.JoinIndexed(ix, 0.5, &bayeslsh.Options{Seed: 42})
		}
	})
	b.Run("cpsjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.JoinIndexed(ix, 0.5, &core.Options{Seed: 42})
		}
	})
}

// BenchmarkParallel measures the repetition-level parallel CPSJoin of
// Section VII against the sequential run.
func BenchmarkParallel(b *testing.B) {
	w := benchWorkload(b, "TOKENS20K")
	ix := core.Preprocess(w.Sets, &core.Options{Seed: 42})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.JoinParallel(ix, 0.5, &core.Options{Seed: 42}, workers)
			}
		})
	}
}

// BenchmarkPPJoinVsAllPairs checks Mann et al.'s finding that ALL is
// competitive with the more advanced positional filtering.
func BenchmarkPPJoinVsAllPairs(b *testing.B) {
	w := benchWorkload(b, "AOL")
	b.Run("allpairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			allpairs.Join(w.Sets, 0.5)
		}
	})
	b.Run("ppjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ppjoin.Join(w.Sets, 0.5)
		}
	})
}
